//! Order-preserving key encoding.
//!
//! B+tree keys are raw byte strings compared lexicographically. To index
//! `f64` columns the encoding must be *order preserving*: `a < b` iff
//! `encode(a) < encode(b)` bytewise. The standard trick: flip the sign bit
//! for non-negative values and flip *all* bits for negative values, then
//! emit big-endian.

use bytes::{BufMut, BytesMut};

/// Encodes an `f64` into 8 bytes whose lexicographic order matches the
/// numeric total order (`total_cmp`).
///
/// # Panics
///
/// Panics on NaN — NaNs never enter the engine (upstream types reject
/// non-finite data).
pub fn encode_f64(v: f64) -> [u8; 8] {
    assert!(!v.is_nan(), "NaN cannot be indexed");
    let bits = v.to_bits();
    let flipped = if bits & (1 << 63) != 0 {
        !bits // negative: reverse order of magnitudes
    } else {
        bits | (1 << 63) // non-negative: above all negatives
    };
    flipped.to_be_bytes()
}

/// Inverse of [`encode_f64`].
pub fn decode_f64(b: [u8; 8]) -> f64 {
    let flipped = u64::from_be_bytes(b);
    let bits = if flipped & (1 << 63) != 0 {
        flipped & !(1 << 63)
    } else {
        !flipped
    };
    f64::from_bits(bits)
}

/// A reusable composite-key buffer.
pub type KeyBuf = BytesMut;

/// Encodes a composite key: the given `f64` columns in order, followed by
/// the row id (big-endian) as a uniquifying suffix.
pub fn encode_key(cols: &[f64], rid: u64, out: &mut KeyBuf) {
    out.clear();
    for &c in cols {
        out.put_slice(&encode_f64(c));
    }
    out.put_u64(rid);
}

/// Decodes the `i`-th `f64` column of a composite key produced by
/// [`encode_key`].
pub fn decode_key_col(key: &[u8], i: usize) -> f64 {
    decode_f64(crate::page::arr(key, i * 8))
}

/// Decodes the row-id suffix of a composite key with `ncols` columns.
pub fn decode_key_rid(key: &[u8], ncols: usize) -> u64 {
    u64::from_be_bytes(crate::page::arr(key, ncols * 8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        for &v in &[
            0.0,
            -0.0,
            1.5,
            -1.5,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
            3600.0,
            -3.0,
        ] {
            assert_eq!(decode_f64(encode_f64(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn order_preserved() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -42.0,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.0,
            42.0,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            let (a, b) = (encode_f64(w[0]), encode_f64(w[1]));
            assert!(a <= b, "{} should encode <= {}", w[0], w[1]);
            if w[0] < w[1] {
                assert!(a < b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        encode_f64(f64::NAN);
    }

    #[test]
    fn composite_key_roundtrip() {
        let mut k = KeyBuf::new();
        encode_key(&[1800.0, -3.5], 0xDEAD, &mut k);
        assert_eq!(k.len(), 24);
        assert_eq!(decode_key_col(&k, 0), 1800.0);
        assert_eq!(decode_key_col(&k, 1), -3.5);
        assert_eq!(decode_key_rid(&k, 2), 0xDEAD);
    }

    #[test]
    fn composite_order_is_lexicographic() {
        let mut a = KeyBuf::new();
        let mut b = KeyBuf::new();
        encode_key(&[1.0, 100.0], 0, &mut a);
        encode_key(&[2.0, -100.0], 0, &mut b);
        assert!(a[..] < b[..], "first column dominates");
        encode_key(&[1.0, -1.0], 5, &mut a);
        encode_key(&[1.0, 1.0], 0, &mut b);
        assert!(a[..] < b[..], "second column breaks ties");
        encode_key(&[1.0, 1.0], 1, &mut a);
        encode_key(&[1.0, 1.0], 2, &mut b);
        assert!(a[..] < b[..], "rid breaks ties last");
    }

    #[test]
    fn proptest_order() {
        use proptest::prelude::*;
        proptest!(|(a in any::<f64>(), b in any::<f64>())| {
            prop_assume!(!a.is_nan() && !b.is_nan());
            let (ea, eb) = (encode_f64(a), encode_f64(b));
            match a.total_cmp(&b) {
                std::cmp::Ordering::Less => prop_assert!(ea < eb),
                std::cmp::Ordering::Greater => prop_assert!(ea > eb),
                std::cmp::Ordering::Equal => prop_assert!(ea == eb),
            }
        });
    }
}
