#![warn(missing_docs)]

//! **SegDiff** — searching for drops (and jumps) in sensor data.
//!
//! This crate is the top of the reproduction of *"On the brink: Searching
//! for drops in sensor data"* (Chen, Cho, Hansen; EDBT 2008). It ties the
//! substrates together:
//!
//! * [`sensorgen`] supplies time series and the data generating model G;
//! * [`segmentation`] turns a series into a piecewise-linear approximation
//!   within a user tolerance `ε` (Lemma 1);
//! * [`featurespace`] compresses all pairwise change events into
//!   parallelogram boundaries of 1–3 corner points (Lemma 3, Table 2);
//! * [`pagestore`] persists the boundaries in relational tables with
//!   B+tree indexes and answers the paper's point/line range queries.
//!
//! The two public index structures are:
//!
//! * [`SegDiffIndex`] — the paper's framework: online segmentation +
//!   feature extraction (Algorithm 1), with the quality guarantee of
//!   Theorem 1 (*no true event missed; every returned pair contains an
//!   event within `2ε` of the thresholds*);
//! * [`exh::ExhIndex`] — the exhaustive baseline **Exh** that stores every
//!   pairwise `(Δt, Δv)` within the window `w`.
//!
//! Both run on the same storage engine so that space and time comparisons
//! (paper §6) are apples to apples. [`oracle`] provides a brute-force
//! ground truth used by the test suite to validate the guarantees.
//!
//! # Quickstart
//!
//! ```
//! use segdiff::{SegDiffConfig, SegDiffIndex, QueryPlan};
//! use featurespace::QueryRegion;
//! use sensorgen::{generate_sensor, CadTransectConfig, HOUR};
//!
//! let dir = std::env::temp_dir().join(format!("segdiff-doc-{}", std::process::id()));
//! std::fs::remove_dir_all(&dir).ok();
//!
//! // A week of synthetic canyon temperatures, five-minute sampling.
//! let series = generate_sensor(&CadTransectConfig::default().with_days(7).clean(), 12, 7);
//!
//! let mut index = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
//! index.ingest_series(&series).unwrap();
//! index.finish().unwrap();
//!
//! // "Find every period with a 3 degree drop within one hour."
//! let region = QueryRegion::drop(1.0 * HOUR, -3.0);
//! let (results, _stats) = index.query(&region, QueryPlan::SeqScan).unwrap();
//! for pair in &results {
//!     // The drop starts in [t_d, t_c] and ends in [t_b, t_a].
//!     assert!(pair.t_d <= pair.t_c && pair.t_b <= pair.t_a);
//! }
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod ablation;
pub mod alerts;
pub mod analysis;
mod cache;
mod config;
pub mod exh;
mod index;
mod ingest;
pub mod naive;
pub mod oracle;
pub mod pool;
mod query;
pub mod refine;
pub mod result;
pub mod sqlgen;
mod stats;
pub mod subscribe;
mod tables;
pub mod transect;

pub use cache::{CacheKey, QueryCache};
pub use config::SegDiffConfig;
pub use index::SegDiffIndex;
pub use ingest::{FeatureExtractor, FeatureRow};
pub use query::{PhaseStats, QueryPlan, QueryStats};
pub use result::{merge_sharded, sort_dedup, SegmentPair, ShardResults};
pub use stats::{CornerHistogram, SegDiffStats};
pub use subscribe::{Notification, Subscription, SubscriptionRegistry};
pub use transect::TransectIndex;

// Re-export the vocabulary types callers need.
pub use featurespace::{QueryRegion, SearchKind};
pub use segmentation::Segmenter;
